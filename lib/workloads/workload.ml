module Rng = Dpq_util.Rng

type op = { node : int; action : [ `Ins of int | `Del ] }
type round = op list
type t = round list

type prio_dist =
  | Uniform of int * int
  | Zipf of { s : float; n : int }
  | Constant_set of int
  | Increasing

let increasing_counter = ref 0

let sample_prio rng = function
  | Uniform (lo, hi) -> Rng.int_in rng lo hi
  | Zipf { s; n } -> Rng.zipf rng ~s ~n
  | Constant_set c -> Rng.int_in rng 1 c
  | Increasing ->
      incr increasing_counter;
      !increasing_counter

(* One round of the λ-injection model.  Kept as the single definition both
   the eager [generate] and the streaming [Gen] build on, so the two paths
   consume the rng in exactly the same order and produce identical rounds
   from identical generator state. *)
let gen_round ~rng ~n ~lambda ~insert_ratio ~prio =
  List.concat_map
    (fun node ->
      List.init lambda (fun _ ->
          if Rng.bernoulli rng ~p:insert_ratio then
            { node; action = `Ins (sample_prio rng prio) }
          else { node; action = `Del }))
    (List.init n (fun v -> v))

let generate ~rng ~n ~rounds ~lambda ?(insert_ratio = 0.5) ~prio () =
  List.init rounds (fun _ -> gen_round ~rng ~n ~lambda ~insert_ratio ~prio)

(* ----------------------------------------------------- open-loop arrivals *)

type arrival =
  | Closed
  | Poisson_rate of float
  | Burst of { on : int; off : int; high : float; low : float }
  | Diurnal of { period : int; peak : float; base : float }

let pi = 4.0 *. atan 1.0

let arrival_rate arrival ~tick =
  match arrival with
  | Closed -> invalid_arg "Workload.arrival_rate: closed-loop arrivals have no rate"
  | Poisson_rate r -> r
  | Burst { on; off; high; low } -> if tick mod (on + off) < on then high else low
  | Diurnal { period; peak; base } ->
      base
      +. (peak -. base)
         *. (1.0 -. cos (2.0 *. pi *. float_of_int (tick mod period) /. float_of_int period))
         /. 2.0

(* One tick of an open-loop arrival process: each node's op count is drawn
   Poisson(λ(tick)) instead of being exactly [lambda].  The per-op draws are
   the same two the closed-loop [gen_round] makes, in the same order. *)
let gen_round_open ~rng ~n ~arrival ~tick ~insert_ratio ~prio =
  let rate = arrival_rate arrival ~tick in
  List.concat_map
    (fun node ->
      let k = Rng.poisson rng ~mean:rate in
      List.init k (fun _ ->
          if Rng.bernoulli rng ~p:insert_ratio then
            { node; action = `Ins (sample_prio rng prio) }
          else { node; action = `Del }))
    (List.init n (fun v -> v))

let arrival_to_string = function
  | Closed -> "closed"
  | Poisson_rate r -> Printf.sprintf "poisson:%.17g" r
  | Burst { on; off; high; low } -> Printf.sprintf "burst:%d:%d:%.17g:%.17g" on off high low
  | Diurnal { period; peak; base } -> Printf.sprintf "diurnal:%d:%.17g:%.17g" period peak base

let arrival_of_string s =
  let fail () = Error (Printf.sprintf "Workload.arrival_of_string: bad arrival %S" s) in
  let non_neg f = match f with Some v when v >= 0.0 -> f | _ -> None in
  match String.split_on_char ':' s with
  | [ "closed" ] -> Ok Closed
  | [ "poisson"; r ] -> (
      match non_neg (float_of_string_opt r) with
      | Some r -> Ok (Poisson_rate r)
      | None -> fail ())
  | [ "burst"; on; off; high; low ] -> (
      match
        ( int_of_string_opt on,
          int_of_string_opt off,
          non_neg (float_of_string_opt high),
          non_neg (float_of_string_opt low) )
      with
      | Some on, Some off, Some high, Some low when on > 0 && off >= 0 ->
          Ok (Burst { on; off; high; low })
      | _ -> fail ())
  | [ "diurnal"; period; peak; base ] -> (
      match
        (int_of_string_opt period, non_neg (float_of_string_opt peak), non_neg (float_of_string_opt base))
      with
      | Some period, Some peak, Some base when period > 0 -> Ok (Diurnal { period; peak; base })
      | _ -> fail ())
  | _ -> fail ()

(* ------------------------------------------------------ streaming generator *)

let dist_to_string = function
  | Uniform (lo, hi) -> Printf.sprintf "uniform:%d:%d" lo hi
  | Zipf { s; n } -> Printf.sprintf "zipf:%.17g:%d" s n
  | Constant_set c -> Printf.sprintf "const:%d" c
  | Increasing -> "increasing"

let dist_of_string s =
  let fail () = Error (Printf.sprintf "Workload.dist_of_string: bad distribution %S" s) in
  match String.split_on_char ':' s with
  | [ "uniform"; lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Ok (Uniform (lo, hi))
      | _ -> fail ())
  | [ "zipf"; s'; n ] -> (
      match (float_of_string_opt s', int_of_string_opt n) with
      | Some s, Some n -> Ok (Zipf { s; n })
      | _ -> fail ())
  | [ "const"; c ] -> (
      match int_of_string_opt c with Some c -> Ok (Constant_set c) | None -> fail ())
  | [ "increasing" ] -> Ok Increasing
  | _ -> fail ()

module Gen = struct
  type spec = {
    n : int;
    rounds : int;
    lambda : int;
    insert_ratio : float;
    dist : prio_dist;
    seed : int;
    arrival : arrival;
  }

  (* The rng is the same named stream the exploration harness draws its
     workloads from, so a [gen:] line in a repro file reproduces the sweep's
     workload bit for bit. *)
  type t = { spec : spec; rng : Rng.t; mutable produced : int }

  let create spec = { spec; rng = Rng.named ~seed:spec.seed "workload"; produced = 0 }
  let spec t = t.spec
  let produced t = t.produced

  (* Exact for closed-loop specs; the expectation for stochastic arrivals. *)
  let total_ops spec =
    match spec.arrival with
    | Closed -> spec.n * spec.rounds * spec.lambda
    | arrival ->
        let mean = ref 0.0 in
        for tick = 0 to spec.rounds - 1 do
          mean := !mean +. arrival_rate arrival ~tick
        done;
        int_of_float (Float.round (float_of_int spec.n *. !mean))

  let next t =
    if t.produced >= t.spec.rounds then None
    else begin
      let tick = t.produced in
      t.produced <- t.produced + 1;
      Some
        (match t.spec.arrival with
        | Closed ->
            gen_round ~rng:t.rng ~n:t.spec.n ~lambda:t.spec.lambda
              ~insert_ratio:t.spec.insert_ratio ~prio:t.spec.dist
        | arrival ->
            gen_round_open ~rng:t.rng ~n:t.spec.n ~arrival ~tick
              ~insert_ratio:t.spec.insert_ratio ~prio:t.spec.dist)
    end

  let iter f t =
    let rec go () = match next t with None -> () | Some r -> f r; go () in
    go ()

  let fold f acc t =
    let rec go acc = match next t with None -> acc | Some r -> go (f acc r) in
    go acc

  (* The [arrival=] key is emitted only for open-loop specs, so every spec
     string (and [gen:] repro line) written before arrivals existed parses
     and round-trips unchanged. *)
  let spec_to_string s =
    Printf.sprintf "n=%d rounds=%d lambda=%d ratio=%.17g dist=%s seed=%d%s" s.n s.rounds
      s.lambda s.insert_ratio (dist_to_string s.dist) s.seed
      (match s.arrival with
      | Closed -> ""
      | a -> " arrival=" ^ arrival_to_string a)

  let spec_of_string str =
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let kvs =
      String.split_on_char ' ' (String.trim str)
      |> List.filter (fun tok -> tok <> "")
      |> List.map (fun tok ->
             match String.index_opt tok '=' with
             | None -> (tok, "")
             | Some i ->
                 (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
    in
    let get k = List.assoc_opt k kvs in
    let int_field k = Option.bind (get k) int_of_string_opt in
    match (int_field "n", int_field "rounds", int_field "lambda", int_field "seed") with
    | Some n, Some rounds, Some lambda, Some seed -> (
        let ratio =
          match get "ratio" with
          | None -> Some 0.5
          | Some r -> float_of_string_opt r
        in
        let arrival =
          match get "arrival" with None -> Ok Closed | Some a -> arrival_of_string a
        in
        match (ratio, get "dist", arrival) with
        | None, _, _ -> fail "Workload.Gen.spec_of_string: bad ratio in %S" str
        | _, None, _ -> fail "Workload.Gen.spec_of_string: missing dist in %S" str
        | _, _, Error e -> Error e
        | Some insert_ratio, Some d, Ok arrival -> (
            match dist_of_string d with
            | Error e -> Error e
            | Ok dist ->
                if n <= 0 || rounds < 0 || lambda < 0 then
                  fail "Workload.Gen.spec_of_string: out-of-range field in %S" str
                else Ok { n; rounds; lambda; insert_ratio; dist; seed; arrival }))
    | _ -> fail "Workload.Gen.spec_of_string: missing n/rounds/lambda/seed in %S" str
end

let of_gen spec =
  let g = Gen.create spec in
  List.rev (Gen.fold (fun acc r -> r :: acc) [] g)

let sorting_workload ~rng ~n ~m ~prio =
  let insert_round =
    List.init m (fun i -> { node = i mod n; action = `Ins (sample_prio rng prio) })
  in
  let delete_rounds =
    let full, rest = (m / n, m mod n) in
    let mk count = List.init count (fun i -> { node = i mod n; action = `Del }) in
    List.init full (fun _ -> mk n) @ if rest > 0 then [ mk rest ] else []
  in
  insert_round :: delete_rounds

let producer_consumer ~rng ~n ~rounds ~rate ~prio =
  let split = max 1 (n / 2) in
  List.init rounds (fun _ ->
      List.concat_map
        (fun node ->
          List.init rate (fun _ ->
              if node < split then { node; action = `Ins (sample_prio rng prio) }
              else { node; action = `Del }))
        (List.init n (fun v -> v)))

let burst ~rng ~n ~quiet_rounds ~burst_size ~prio =
  let quiet =
    List.init quiet_rounds (fun _ ->
        [ { node = Rng.int rng n; action = `Ins (sample_prio rng prio) } ])
  in
  let boom =
    List.init burst_size (fun i ->
        if i mod 2 = 0 then { node = i mod n; action = `Ins (sample_prio rng prio) }
        else { node = i mod n; action = `Del })
  in
  quiet @ [ boom ]

(* ---------------------------------------------------------- serialization *)

let op_to_string o =
  match o.action with
  | `Ins p -> Printf.sprintf "%d:I%d" o.node p
  | `Del -> Printf.sprintf "%d:D" o.node

let op_of_string s =
  let fail () = Error (Printf.sprintf "Workload.op_of_string: bad op %S" s) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let node = int_of_string_opt (String.sub s 0 i) in
      let act = String.sub s (i + 1) (String.length s - i - 1) in
      match (node, act) with
      | Some node, "D" when node >= 0 -> Ok { node; action = `Del }
      | Some node, _ when node >= 0 && String.length act >= 2 && act.[0] = 'I' -> (
          match int_of_string_opt (String.sub act 1 (String.length act - 1)) with
          | Some p -> Ok { node; action = `Ins p }
          | None -> fail ())
      | _ -> fail ())

(* A round is one line of space-separated ops; "." stands for an empty round
   so round boundaries survive the trip (they decide what batches together). *)
let round_to_string = function
  | [] -> "."
  | ops -> String.concat " " (List.map op_to_string ops)

let round_of_string line =
  let line = String.trim line in
  if line = "." || line = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match op_of_string tok with Ok op -> go (op :: acc) rest | Error _ as e -> e)
    in
    go [] (List.filter (fun s -> s <> "") (String.split_on_char ' ' line))

let to_string t = String.concat "\n" (List.map round_to_string t)

let of_string s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match round_of_string line with Ok r -> go (r :: acc) rest | Error _ as e -> e)
  in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [ line ] when String.length line > 4 && String.sub line 0 4 = "gen:" ->
      (* generator form: materialize the referenced spec *)
      Result.map of_gen
        (Gen.spec_of_string (String.sub line 4 (String.length line - 4)))
  | _ -> go [] lines

(* ------------------------------------------------------------- shrinking *)

(* Candidate reductions for the greedy shrinker, largest cuts first: drop a
   whole round, drop half a round, drop a single op.  Single-op candidates
   are only offered once the workload is already small — they are O(ops)
   many, and on a big workload the coarser cuts get there faster. *)
let shrink_candidates t =
  let arr = Array.of_list t in
  let nrounds = Array.length arr in
  let without_round i =
    List.filteri (fun j _ -> j <> i) t
  in
  let replace_round i r = List.mapi (fun j old -> if j = i then r else old) t in
  let drop_rounds =
    if nrounds <= 1 then []
    else List.init nrounds without_round
  in
  let halve_rounds =
    List.concat
      (List.init nrounds (fun i ->
           let ops = arr.(i) in
           let len = List.length ops in
           if len < 2 then []
           else
             let half = len / 2 in
             [
               replace_round i (List.filteri (fun k _ -> k >= half) ops);
               replace_round i (List.filteri (fun k _ -> k < half) ops);
             ]))
  in
  let ops_total = List.fold_left (fun acc r -> acc + List.length r) 0 t in
  let drop_ops =
    if ops_total > 48 then []
    else
      List.concat
        (List.init nrounds (fun i ->
             let ops = arr.(i) in
             List.init (List.length ops) (fun k ->
                 replace_round i (List.filteri (fun j _ -> j <> k) ops))))
  in
  drop_rounds @ halve_rounds @ drop_ops

let total_ops t = List.fold_left (fun acc r -> acc + List.length r) 0 t
let num_rounds = List.length

let inserts t =
  List.fold_left
    (fun acc r ->
      acc + List.length (List.filter (fun o -> match o.action with `Ins _ -> true | _ -> false) r))
    0 t

let deletes t = total_ops t - inserts t
