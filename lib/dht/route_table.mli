(** Per-batch route table (the PR 4 trick, factored out for reuse).

    A batch of routed operations over a fixed overlay resolves the same
    points and walks the same paths over and over: DHT replies always route
    to the requester's fixed reply point, and KSelect's sorting storms
    address every message to the manager of a hashed position or pair
    point.  Within one batch the overlay cannot change (kills and joins
    commit only at quiescent batch boundaries), so both resolutions are
    pure — this table memoizes them for the lifetime of a batch.

    [manager] memoizes {!Dpq_overlay.Ldb.manager_of_point}: protocols that
    keep a table per batch can address a point's manager directly instead
    of re-walking the overlay per candidate.  [path] memoizes
    {!Dpq_overlay.Ldb.route_array} keyed by (source vnode, point): the
    returned array is shared across hits, which is safe because forwarding
    only ever reads it.  Neither call sends messages; what a protocol does
    with the resolution (hop the full path like the DHT, or send direct
    like KSelect's aggregated sorting stage) is its own cost-model
    decision. *)

type t

val create : Dpq_overlay.Ldb.t -> t
(** Build an empty table over the given overlay snapshot.  The table must
    be dropped when the overlay changes (i.e. at the batch boundary). *)

val ldb : t -> Dpq_overlay.Ldb.t

val manager : t -> point:float -> Dpq_overlay.Ldb.vnode
(** Memoized [Ldb.manager_of_point]. *)

val owner : t -> point:float -> int
(** Real node owning {!manager}. *)

val path : t -> src:Dpq_overlay.Ldb.vnode -> point:float -> Dpq_overlay.Ldb.vnode array
(** Memoized [Ldb.route_array].  Hits return the same (read-only) array. *)

val hits : t -> int
(** Memoization hits so far, for diagnostics and tests. *)
