(** Distributed hash table embedded in the LDB (paper Lemma 2.2 (ii)–(iv)).

    Keys are integers; a seeded hash maps each key to a point of [\[0,1)]
    whose cycle predecessor — the {e manager} — stores the associated
    elements.  [Put] routes an element to the manager; [Get] routes a request
    there, removes one element and routes it back to the requester's middle
    virtual node.  Because both sides hash the same key, a matching Put/Get
    pair is guaranteed to meet at the same virtual node (Skeap Phase 4,
    §3.2.4).  A Get that arrives before its Put parks at the manager until
    the Put shows up — the paper's asynchronous rendezvous rule.

    Batches of operations can be executed on the synchronous engine (for
    round/congestion measurements) or on the asynchronous engine (for
    semantics tests under arbitrary message reordering).  Storage persists
    across batches; the engines only carry the in-flight traffic.

    With replication degree [k > 1] every key's entries are kept at [k]
    successor points [h(x) + r/k (mod 1)], [r = 0 .. k-1].  Replica 0 is
    the primary every rendezvous decision is made on (so [k = 1] runs are
    bit-identical to the unreplicated DHT); the primary maintains the
    backup copies with replica-update messages inside each batch.  After a
    permanent node loss ({!kill_node}) the dead node's copies are rebuilt
    on the survivors by Merkle anti-entropy {!repair}. *)

module Element = Dpq_util.Element

type t

val create : ?k:int -> ldb:Dpq_overlay.Ldb.t -> seed:int -> unit -> t
(** [seed] keys the key-to-point hash (independent from the label hash).
    [k] is the replication degree (default 1 = off; must be >= 1). *)

val ldb : t -> Dpq_overlay.Ldb.t

val replication : t -> int
(** The replication degree [k]. *)

val key_point : t -> int -> float
(** Where a key lives in [\[0,1)]. *)

val replica_point : t -> int -> int -> float
(** [replica_point t r key]: where replica [r] of [key] lives;
    [replica_point t 0 key = key_point t key] exactly. *)

val manager_of_key : t -> int -> Dpq_overlay.Ldb.vnode

type op =
  | Put of { origin : int; key : int; elt : Element.t; confirm : bool }
      (** Store [elt] under [key]; if [confirm], a confirmation is routed
          back to [origin] (used by Seap's Insert phase, §5.1). *)
  | Get of { origin : int; key : int }
      (** Remove one element stored under [key] and deliver it to
          [origin]. *)

type completion =
  | Put_confirmed of { origin : int; key : int }
  | Got of { origin : int; key : int; elt : Element.t }

val run_batch_sync :
  ?trace:Dpq_obs.Trace.t ->
  ?faults:Dpq_simrt.Fault_plan.t ->
  ?sched:Dpq_simrt.Sched.t ->
  t ->
  op list ->
  completion list * Dpq_aggtree.Phase.report
(** Execute all operations concurrently on a synchronous engine, to
    quiescence.  Gets without a matching Put stay parked (see
    {!pending_gets}) and produce no completion.  With [trace], the batch
    opens a ["dht"] span, emits one [Dht_put]/[Dht_get] event per launched
    operation (tagged with the manager node it rendezvouses at), traces
    every delivery, and closes the span with the returned report.  With
    [faults], the batch's engine runs over the faulty network with
    reliable delivery.  With [sched], the adversarial scheduler perturbs
    the batch's delivery order (see {!Dpq_simrt.Sched}). *)

val run_batch_async :
  ?trace:Dpq_obs.Trace.t ->
  ?faults:Dpq_simrt.Fault_plan.t ->
  ?sched:Dpq_simrt.Sched.t ->
  t ->
  seed:int ->
  ?policy:Dpq_simrt.Async_engine.delay_policy ->
  op list ->
  completion list
(** Same, on the asynchronous engine: messages are delayed and reordered
    arbitrarily; used to check that the rendezvous semantics do not depend
    on delivery order. *)

val set_topology : t -> Dpq_overlay.Ldb.t -> int
(** Switch to a new overlay after a join/leave; returns how many stored
    elements (and parked requests) changed manager — the volume of the
    data handoff the membership change causes. *)

val stored_counts : t -> int array
(** Elements currently stored per real node — the fairness measure of
    Lemma 2.2(iv). *)

val size : t -> int
(** Total stored elements. *)

val pending_gets : t -> int
(** Gets parked waiting for their Put. *)

val stored_elements : t -> Element.t list
(** All stored elements, unordered (testing/diagnostics). *)

val elements_at : t -> node:int -> Element.t list
(** Elements a given real node currently stores (its virtual nodes'
    key-space share) — the per-node candidate sets KSelect works on. *)

val take_matching : t -> node:int -> f:(Element.t -> bool) -> Element.t list
(** Remove and return all elements stored at [node] that satisfy [f]:
    Seap's DeleteMin phase uses this to pull the k smallest elements out of
    their random-key homes before re-storing them under position keys
    (§5.2).  Purely local to [node].  Replica copies drop the same
    identities (free local bookkeeping, like the call itself). *)

(** {2 Permanent loss and anti-entropy repair} *)

type repair_stats = {
  sessions : int;  (** reconciliation sessions run (including clean ones) *)
  keys_pulled : int;  (** keys whose content changed at a puller *)
  elements_shipped : int;  (** elements copied to close divergences *)
  repair_messages : int;  (** protocol messages (Merkle sigs + shipments) *)
  repair_bits : int;  (** protocol traffic — the O(δ log m) bound's subject *)
}

type kill_report = { destroyed : int; repair : repair_stats }

val repair : ?trace:Dpq_obs.Trace.t -> t -> repair_stats
(** Reconcile the [k] replica copies to their union with the Merkle
    anti-entropy protocol (modeled on Scalaris's rr_recon): for each
    directed replica pair, per-(owner, owner) sessions exchange compressed
    hash-trie signatures top-down and ship only the entries of differing
    leaf ranges.  Correct because replica divergence is one-sided (copies
    can only miss entries, never hold stale ones).  Runs on a fresh
    synchronous engine (reliable control plane); with [trace] it opens a
    ["repair"] span, emits [Repair_session] events for productive sessions
    and one [Repair_end], so the derived repair metrics in
    {!Dpq_obs.Trace} measure exactly this traffic.  No-op at [k = 1]. *)

val kill_node : ?trace:Dpq_obs.Trace.t -> t -> node:int -> kill_report
(** Permanent node loss: destroy every replica copy stored at [node],
    remove it from the overlay ({!Dpq_overlay.Ldb.remove} — survivors keep
    their ids; the dead range falls to the cycle predecessors) and run
    {!repair} to rebuild the lost copies from the surviving replicas.
    Emits [Repair_start] with the destroyed-entry count.  Must only be
    called between batches (nothing in flight).  Raises
    [Invalid_argument] if [node] is already gone or the last live node. *)

val drop_replica_entries : t -> r:int -> f:(key:int -> bool) -> int
(** Testing hook: silently delete replica [r]'s entries for keys selected
    by [f], returning how many entries were dropped — used to plant a
    divergence of known size δ for the repair-traffic bound experiment. *)
