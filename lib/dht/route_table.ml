module Ldb = Dpq_overlay.Ldb

type t = {
  ldb : Ldb.t;
  managers : (float, Ldb.vnode) Hashtbl.t;
  paths : (int * float, Ldb.vnode array) Hashtbl.t;
  mutable hits : int;
}

let create ldb = { ldb; managers = Hashtbl.create 64; paths = Hashtbl.create 64; hits = 0 }
let ldb t = t.ldb

let manager t ~point =
  match Hashtbl.find_opt t.managers point with
  | Some v ->
      t.hits <- t.hits + 1;
      v
  | None ->
      let v = Ldb.manager_of_point t.ldb point in
      Hashtbl.replace t.managers point v;
      v

let owner t ~point = Ldb.owner (manager t ~point)

let path t ~src ~point =
  let key = (src, point) in
  match Hashtbl.find_opt t.paths key with
  | Some p ->
      t.hits <- t.hits + 1;
      p
  | None ->
      let p = Ldb.route_array t.ldb ~src ~point in
      Hashtbl.replace t.paths key p;
      p

let hits t = t.hits
