module Ldb = Dpq_overlay.Ldb
module Sync = Dpq_simrt.Sync_engine
module Async = Dpq_simrt.Async_engine
module Phase = Dpq_aggtree.Phase
module Element = Dpq_util.Element
module Bitsize = Dpq_util.Bitsize

type t = {
  mutable ldb : Ldb.t;
  mutable header_bits : int; (* routing header for the current n, cached *)
  hash : Dpq_util.Hashing.t;
  store : (int, Element.t Queue.t) Hashtbl.t; (* key -> stored elements *)
  parked : (int, int Queue.t) Hashtbl.t; (* key -> waiting requesters *)
}

let compute_header_bits ldb =
  (* target point (≈ 2 log n bits at the needed resolution) + hop counter *)
  let n = max 2 (Ldb.n ldb) in
  (2 * Bitsize.log2_ceil n) + Bitsize.log2_ceil n

let create ~ldb ~seed =
  {
    ldb;
    header_bits = compute_header_bits ldb;
    hash = Dpq_util.Hashing.create ~seed;
    store = Hashtbl.create 64;
    parked = Hashtbl.create 16;
  }

let ldb t = t.ldb
let key_point t k = Dpq_util.Hashing.to_unit_interval t.hash k
let manager_of_key t k = Ldb.manager_of_point t.ldb (key_point t k)

type op =
  | Put of { origin : int; key : int; elt : Element.t; confirm : bool }
  | Get of { origin : int; key : int }

type completion =
  | Put_confirmed of { origin : int; key : int }
  | Got of { origin : int; key : int; elt : Element.t }

(* In-flight wire format: an immediate integer [(rid lsl 16) lor idx]
   naming a route in the batch's route table and the hop position of the
   message's current holder on that route's vnode path.  The modelled wire
   cost is the O(log n)-bit target point + hop counter of de Bruijn routing
   (a fixed routing header) plus the payload's encoded size, computed once
   at launch; the table keeps both.  Forwarding a hop is then [w + 1] — no
   allocation at all on the per-hop fast path, which carries ~99% of a
   priority-queue run's messages. *)
type payload =
  | P_put of { origin : int; key : int; elt : Element.t; confirm : bool }
  | P_get of { origin : int; key : int }
  | P_reply of { origin : int; key : int; elt : Element.t }
  | P_confirm of { origin : int; key : int }

type batch = {
  mutable bpaths : Ldb.vnode array array; (* rid -> visited-vnode path *)
  mutable bpbits : int array; (* rid -> payload bits *)
  mutable bpay : payload array; (* rid -> payload *)
  mutable nroutes : int;
}

let dummy_payload = P_confirm { origin = 0; key = 0 }

let batch_create () =
  {
    bpaths = Array.make 64 [||];
    bpbits = Array.make 64 0;
    bpay = Array.make 64 dummy_payload;
    nroutes = 0;
  }

let grow a fill =
  let a' = Array.make (2 * Array.length a) fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let batch_add b path pbits payload =
  if Array.length path > 0x10000 then invalid_arg "Dht: route too long for the wire encoding";
  if b.nroutes = Array.length b.bpaths then begin
    b.bpaths <- grow b.bpaths [||];
    b.bpbits <- grow b.bpbits 0;
    b.bpay <- grow b.bpay dummy_payload
  end;
  let rid = b.nroutes in
  b.bpaths.(rid) <- path;
  b.bpbits.(rid) <- pbits;
  b.bpay.(rid) <- payload;
  b.nroutes <- rid + 1;
  rid

let payload_bits t = function
  | P_put p -> Bitsize.bits_of_int p.origin + Bitsize.bits_of_int p.key + Element.encoded_bits p.elt + 1
  | P_get g -> Bitsize.bits_of_int g.origin + Bitsize.bits_of_int g.key
  | P_reply r -> Bitsize.bits_of_int r.origin + Bitsize.bits_of_int r.key + Element.encoded_bits r.elt
  | P_confirm c -> Bitsize.bits_of_int c.origin + Bitsize.bits_of_int c.key
  [@@warning "-27"]

let size_bits t b w = t.header_bits + b.bpbits.(w lsr 16)

let store_push t key elt =
  let q =
    match Hashtbl.find_opt t.store key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.store key q;
        q
  in
  Queue.push elt q

let store_pop t key =
  match Hashtbl.find_opt t.store key with
  | None -> None
  | Some q ->
      if Queue.is_empty q then None
      else
        let e = Queue.pop q in
        if Queue.is_empty q then Hashtbl.remove t.store key;
        Some e

let park t key requester =
  let q =
    match Hashtbl.find_opt t.parked key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.parked key q;
        q
  in
  Queue.push requester q

let unpark t key =
  match Hashtbl.find_opt t.parked key with
  | None -> None
  | Some q ->
      if Queue.is_empty q then None
      else
        let r = Queue.pop q in
        if Queue.is_empty q then Hashtbl.remove t.parked key;
        Some r

(* Route a payload from [src_vnode] to the manager of [point].  [send]
   abstracts over the engine. *)
let route_via t b ~send ~src_vnode ~point payload =
  let path = Ldb.route_array t.ldb ~src:src_vnode ~point in
  let pbits = payload_bits t payload in
  let rid = batch_add b path pbits payload in
  if Array.length path <= 1 then
    (* Already at the manager: local handling via a self-send. *)
    send ~src:(Ldb.owner src_vnode) ~dst:(Ldb.owner src_vnode) (rid lsl 16)
  else send ~src:(Ldb.owner path.(0)) ~dst:(Ldb.owner path.(1)) ((rid lsl 16) lor 1)

let reply_point t origin = Ldb.label t.ldb (Ldb.vnode ~owner:origin Ldb.Middle)

(* Engine-agnostic message handler.  [send] enqueues a message; [complete]
   records a finished operation. *)
let handle t b ~send ~complete w =
  let rid = w lsr 16 in
  let idx = w land 0xffff in
  let path = b.bpaths.(rid) in
  let last = Array.length path - 1 in
  if idx < last then
    (* Still in transit: forward one hop. *)
    send ~src:(Ldb.owner path.(idx)) ~dst:(Ldb.owner path.(idx + 1)) (w + 1)
  else begin
    if last < 0 then failwith "Dht: empty routing path";
    let final = path.(last) in
    match b.bpay.(rid) with
    | P_put { origin; key; elt; confirm } ->
        (match unpark t key with
        | Some requester ->
            (* A Get was already waiting: rendezvous complete. *)
            route_via t b ~send ~src_vnode:final ~point:(reply_point t requester)
              (P_reply { origin = requester; key; elt })
        | None -> store_push t key elt);
        if confirm then
          route_via t b ~send ~src_vnode:final ~point:(reply_point t origin)
            (P_confirm { origin; key })
    | P_get { origin; key } -> (
        match store_pop t key with
        | Some elt ->
            route_via t b ~send ~src_vnode:final ~point:(reply_point t origin)
              (P_reply { origin; key; elt })
        | None -> park t key origin)
    | P_reply { origin; key; elt } -> complete (Got { origin; key; elt })
    | P_confirm { origin; key } -> complete (Put_confirmed { origin; key })
  end

let launch t b ~send op =
  match op with
  | Put { origin; key; elt; confirm } ->
      route_via t b ~send ~src_vnode:(Ldb.vnode ~owner:origin Ldb.Middle)
        ~point:(key_point t key)
        (P_put { origin; key; elt; confirm })
  | Get { origin; key } ->
      route_via t b ~send ~src_vnode:(Ldb.vnode ~owner:origin Ldb.Middle)
        ~point:(key_point t key)
        (P_get { origin; key })

(* One trace event per launched operation, tagged with the manager node the
   key rendezvouses at. *)
let trace_ops trace t ops =
  match trace with
  | None -> ()
  | Some _ ->
      List.iter
        (fun op ->
          match op with
          | Put { origin; key; _ } ->
              Dpq_obs.Trace.dht_put trace ~origin ~key ~manager:(Ldb.owner (manager_of_key t key))
          | Get { origin; key } ->
              Dpq_obs.Trace.dht_get trace ~origin ~key ~manager:(Ldb.owner (manager_of_key t key)))
        ops

let run_batch_sync ?trace ?faults ?sched t ops =
  let span = Dpq_obs.Trace.phase_start trace "dht" in
  trace_ops trace t ops;
  let completions = ref [] in
  let complete c = completions := c :: !completions in
  let b = batch_create () in
  (* One [send] closure for the whole batch (routed through a ref to break
     the engine/handler cycle): the old per-delivery lambda was a
     measurable allocation on every forwarded hop. *)
  let send_ref = ref (fun ~src:_ ~dst:_ _ -> assert false) in
  let send ~src ~dst m = !send_ref ~src ~dst m in
  let handler _eng ~dst:_ ~src:_ w = handle t b ~send ~complete w in
  let eng = Sync.create ~n:(Ldb.n t.ldb) ~size_bits:(size_bits t b) ~handler ?trace ?faults ?sched () in
  send_ref := (fun ~src ~dst m -> Sync.send eng ~src ~dst m);
  List.iter (fun op -> launch t b ~send op) ops;
  let rounds = Sync.run_to_quiescence eng in
  let m = Sync.metrics eng in
  let report =
    Phase.
      {
        rounds;
        messages = Dpq_simrt.Metrics.total_messages m;
        max_congestion = Dpq_simrt.Metrics.max_congestion m;
        max_message_bits = Dpq_simrt.Metrics.max_message_bits m;
        total_bits = Dpq_simrt.Metrics.total_bits m;
        local_deliveries = Dpq_simrt.Metrics.local_deliveries m;
        busiest_node_load = Array.fold_left max 0 (Dpq_simrt.Metrics.node_load m);
      }
  in
  Dpq_obs.Trace.phase_end trace ~span ~name:"dht" ~rounds:report.Phase.rounds
    ~messages:report.Phase.messages ~max_congestion:report.Phase.max_congestion
    ~max_message_bits:report.Phase.max_message_bits ~total_bits:report.Phase.total_bits;
  (List.rev !completions, report)

let run_batch_async ?trace ?faults ?sched t ~seed ?(policy = Dpq_simrt.Async_engine.Uniform (1.0, 10.0)) ops =
  (* The asynchronous model reports no synchronous cost, so the span closes
     with zeros even though delivery events are traced inside it. *)
  let span = Dpq_obs.Trace.phase_start trace "dht-async" in
  trace_ops trace t ops;
  let completions = ref [] in
  let complete c = completions := c :: !completions in
  let b = batch_create () in
  let send_ref = ref (fun ~src:_ ~dst:_ _ -> assert false) in
  let send ~src ~dst m = !send_ref ~src ~dst m in
  let handler _eng ~dst:_ ~src:_ w = handle t b ~send ~complete w in
  let eng = Async.create ~n:(Ldb.n t.ldb) ~seed ~policy ?trace ?faults ?sched ~size_bits:(size_bits t b) ~handler () in
  send_ref := (fun ~src ~dst m -> Async.send eng ~src ~dst m);
  List.iter (fun op -> launch t b ~send op) ops;
  ignore (Async.run_to_quiescence eng);
  Dpq_obs.Trace.phase_end trace ~span ~name:"dht-async" ~rounds:0 ~messages:0 ~max_congestion:0
    ~max_message_bits:0 ~total_bits:0;
  List.rev !completions

let set_topology t ldb' =
  (* Count the elements (and parked requests) whose manager moved to a
     different real node: the data that a join/leave hands off. *)
  let moved = ref 0 in
  let owner_of ldb key = Ldb.owner (Ldb.manager_of_point ldb (key_point t key)) in
  Hashtbl.iter
    (fun key q -> if owner_of t.ldb key <> owner_of ldb' key then moved := !moved + Queue.length q)
    t.store;
  Hashtbl.iter
    (fun key q -> if owner_of t.ldb key <> owner_of ldb' key then moved := !moved + Queue.length q)
    t.parked;
  t.ldb <- ldb';
  t.header_bits <- compute_header_bits ldb';
  !moved

let stored_counts t =
  let counts = Array.make (Ldb.n t.ldb) 0 in
  Hashtbl.iter
    (fun key q ->
      let owner = Ldb.owner (manager_of_key t key) in
      counts.(owner) <- counts.(owner) + Queue.length q)
    t.store;
  counts

let size t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.store 0
let pending_gets t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.parked 0

let stored_elements t =
  Hashtbl.fold (fun _ q acc -> List.rev_append (List.of_seq (Queue.to_seq q)) acc) t.store []

let elements_at t ~node =
  Hashtbl.fold
    (fun key q acc ->
      if Ldb.owner (manager_of_key t key) = node then
        List.rev_append (List.of_seq (Queue.to_seq q)) acc
      else acc)
    t.store []

let take_matching t ~node ~f =
  let taken = ref [] in
  let updates = ref [] in
  Hashtbl.iter
    (fun key q ->
      if Ldb.owner (manager_of_key t key) = node then begin
        let keep = Queue.create () in
        Queue.iter (fun e -> if f e then taken := e :: !taken else Queue.push e keep) q;
        updates := (key, keep) :: !updates
      end)
    t.store;
  List.iter
    (fun (key, keep) ->
      if Queue.is_empty keep then Hashtbl.remove t.store key
      else Hashtbl.replace t.store key keep)
    !updates;
  !taken
