module Ldb = Dpq_overlay.Ldb
module Sync = Dpq_simrt.Sync_engine
module Async = Dpq_simrt.Async_engine
module Phase = Dpq_aggtree.Phase
module Element = Dpq_util.Element
module Bitsize = Dpq_util.Bitsize

type t = {
  mutable ldb : Ldb.t;
  mutable header_bits : int; (* routing header for the current n, cached *)
  hash : Dpq_util.Hashing.t;
  k : int; (* replication degree; 1 = no replication *)
  (* Replica r's copy of the key space: replica 0 is the primary copy every
     rendezvous decision is made on; copies r >= 1 are maintained by the
     primary with P_bset/P_brm/P_bpark/P_bunpark messages and only read by
     anti-entropy repair. *)
  stores : (int, Element.t Queue.t) Hashtbl.t array; (* key -> stored elements *)
  parkeds : (int, int Queue.t) Hashtbl.t array; (* key -> waiting requesters *)
  (* Transient tombstones: a backup removal that overtook its matching
     insertion (routes differ, so ordering across messages is arbitrary).
     Provably empty whenever a batch has quiesced. *)
  neg_elts : (int, Element.t list ref) Hashtbl.t array;
  neg_parks : (int, int list ref) Hashtbl.t array;
}

let compute_header_bits ldb =
  (* target point (≈ 2 log n bits at the needed resolution) + hop counter *)
  let n = max 2 (Ldb.n ldb) in
  (2 * Bitsize.log2_ceil n) + Bitsize.log2_ceil n

let create ?(k = 1) ~ldb ~seed () =
  if k < 1 then invalid_arg "Dht.create: replication degree must be >= 1";
  {
    ldb;
    header_bits = compute_header_bits ldb;
    hash = Dpq_util.Hashing.create ~seed;
    k;
    stores = Array.init k (fun _ -> Hashtbl.create 64);
    parkeds = Array.init k (fun _ -> Hashtbl.create 16);
    neg_elts = Array.init k (fun _ -> Hashtbl.create 4);
    neg_parks = Array.init k (fun _ -> Hashtbl.create 4);
  }

let ldb t = t.ldb
let replication t = t.k
let key_point t k = Dpq_util.Hashing.to_unit_interval t.hash k

(* Successor points: replica r of a key starts at h(x) + r/k (mod 1), then
   walks forward one managed arc at a time past every node that already
   holds a lower replica of the same key.  The walk is what makes the
   guarantee "any k - 1 copies of a key can be lost" literal rather than
   probabilistic: a real node's three virtual arcs are scattered around the
   circle, so with fixed offsets alone all k points can land on arcs of ONE
   node — a single kill then destroys every copy and anti-entropy has
   nothing left to pull from (seen in the wild at n = 5, k = 3).  Placement
   is recomputed against the current overlay on every use, so copies
   re-spread automatically after a kill re-homes the circle.  Replica 0 is
   exactly the unreplicated placement, so k = 1 runs are bit-identical to
   the historical behavior. *)
let rec replica_point t r key =
  if r = 0 then key_point t key
  else begin
    let p = key_point t key +. (float_of_int r /. float_of_int t.k) in
    let p = if p >= 1.0 then p -. 1.0 else p in
    let used = List.init r (fun r' -> Ldb.owner (Ldb.manager_of_point t.ldb (replica_point t r' key))) in
    (* Cap the walk at one full lap: with fewer live nodes than replicas a
       fresh owner does not exist, and the base point is the honest answer. *)
    let rec walk p steps =
      let m = Ldb.manager_of_point t.ldb p in
      if steps > 3 * Ldb.n t.ldb || not (List.mem (Ldb.owner m) used) then p
      else walk (Ldb.label t.ldb (Ldb.succ t.ldb m)) (steps + 1)
    in
    walk p 0
  end

let manager_of_key t k = Ldb.manager_of_point t.ldb (key_point t k)
let replica_owner t r key = Ldb.owner (Ldb.manager_of_point t.ldb (replica_point t r key))

type op =
  | Put of { origin : int; key : int; elt : Element.t; confirm : bool }
  | Get of { origin : int; key : int }

type completion =
  | Put_confirmed of { origin : int; key : int }
  | Got of { origin : int; key : int; elt : Element.t }

(* In-flight wire format: an immediate integer [(rid lsl 16) lor idx]
   naming a route in the batch's route table and the hop position of the
   message's current holder on that route's vnode path.  The modelled wire
   cost is the O(log n)-bit target point + hop counter of de Bruijn routing
   (a fixed routing header) plus the payload's encoded size, computed once
   at launch; the table keeps both.  Forwarding a hop is then [w + 1] — no
   allocation at all on the per-hop fast path, which carries ~99% of a
   priority-queue run's messages. *)
type payload =
  | P_put of { origin : int; key : int; elt : Element.t; confirm : bool }
  | P_get of { origin : int; key : int }
  | P_reply of { origin : int; key : int; elt : Element.t }
  | P_confirm of { origin : int; key : int }
  (* Primary -> backup replica maintenance (never sent when k = 1). *)
  | P_bset of { key : int; elt : Element.t; r : int }
  | P_brm of { key : int; elt : Element.t; r : int }
  | P_bpark of { key : int; origin : int; r : int }
  | P_bunpark of { key : int; origin : int; r : int }

type batch = {
  mutable bpaths : Ldb.vnode array array; (* rid -> visited-vnode path *)
  mutable bpbits : int array; (* rid -> payload bits *)
  mutable bpay : payload array; (* rid -> payload *)
  mutable nroutes : int;
  brt : Route_table.t; (* per-batch route memo: reply/replica paths repeat *)
}

let dummy_payload = P_confirm { origin = 0; key = 0 }

let batch_create ~ldb () =
  {
    bpaths = Array.make 64 [||];
    bpbits = Array.make 64 0;
    bpay = Array.make 64 dummy_payload;
    nroutes = 0;
    brt = Route_table.create ldb;
  }

let grow a fill =
  let a' = Array.make (2 * Array.length a) fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let batch_add b path pbits payload =
  if Array.length path > 0x10000 then invalid_arg "Dht: route too long for the wire encoding";
  if b.nroutes = Array.length b.bpaths then begin
    b.bpaths <- grow b.bpaths [||];
    b.bpbits <- grow b.bpbits 0;
    b.bpay <- grow b.bpay dummy_payload
  end;
  let rid = b.nroutes in
  b.bpaths.(rid) <- path;
  b.bpbits.(rid) <- pbits;
  b.bpay.(rid) <- payload;
  b.nroutes <- rid + 1;
  rid

let payload_bits t = function
  | P_put p -> Bitsize.bits_of_int p.origin + Bitsize.bits_of_int p.key + Element.encoded_bits p.elt + 1
  | P_get g -> Bitsize.bits_of_int g.origin + Bitsize.bits_of_int g.key
  | P_reply r -> Bitsize.bits_of_int r.origin + Bitsize.bits_of_int r.key + Element.encoded_bits r.elt
  | P_confirm c -> Bitsize.bits_of_int c.origin + Bitsize.bits_of_int c.key
  | P_bset p -> Bitsize.bits_of_int p.key + Element.encoded_bits p.elt + Bitsize.bits_of_int p.r
  | P_brm p -> Bitsize.bits_of_int p.key + Element.encoded_bits p.elt + Bitsize.bits_of_int p.r
  | P_bpark p -> Bitsize.bits_of_int p.key + Bitsize.bits_of_int p.origin + Bitsize.bits_of_int p.r
  | P_bunpark p ->
      Bitsize.bits_of_int p.key + Bitsize.bits_of_int p.origin + Bitsize.bits_of_int p.r
  [@@warning "-27"]

let size_bits t b w = t.header_bits + b.bpbits.(w lsr 16)

(* ------------------------------------------------- per-replica table ops *)

let tbl_push tbl key v =
  let q =
    match Hashtbl.find_opt tbl key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace tbl key q;
        q
  in
  Queue.push v q

let tbl_pop tbl key =
  match Hashtbl.find_opt tbl key with
  | None -> None
  | Some q ->
      if Queue.is_empty q then None
      else
        let e = Queue.pop q in
        if Queue.is_empty q then Hashtbl.remove tbl key;
        Some e

(* Remove the first entry of [key]'s queue satisfying [eq]; false if none. *)
let tbl_remove tbl key eq =
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some q ->
      let keep = Queue.create () in
      let found = ref false in
      Queue.iter
        (fun v -> if (not !found) && eq v then found := true else Queue.push v keep)
        q;
      if !found then
        if Queue.is_empty keep then Hashtbl.remove tbl key else Hashtbl.replace tbl key keep;
      !found

let neg_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := v :: !l
  | None -> Hashtbl.replace tbl key (ref [ v ])

(* Cancel one tombstone matching [eq]; false if none. *)
let neg_cancel tbl key eq =
  match Hashtbl.find_opt tbl key with
  | None -> false
  | Some l -> (
      let rec take acc = function
        | [] -> None
        | v :: rest when eq v -> Some (List.rev_append acc rest)
        | v :: rest -> take (v :: acc) rest
      in
      match take [] !l with
      | None -> false
      | Some rest ->
          if rest = [] then Hashtbl.remove tbl key else l := rest;
          true)

let store_push t key elt = tbl_push t.stores.(0) key elt
let store_pop t key = tbl_pop t.stores.(0) key
let park t key requester = tbl_push t.parkeds.(0) key requester
let unpark t key = tbl_pop t.parkeds.(0) key

(* Backup apply: a set/park whose removal already arrived cancels against
   the tombstone instead of landing. *)
let backup_set t r key elt =
  if not (neg_cancel t.neg_elts.(r) key (Element.equal elt)) then tbl_push t.stores.(r) key elt

let backup_rm t r key elt =
  if not (tbl_remove t.stores.(r) key (Element.equal elt)) then neg_add t.neg_elts.(r) key elt

let backup_park t r key origin =
  if not (neg_cancel t.neg_parks.(r) key (Int.equal origin)) then
    tbl_push t.parkeds.(r) key origin

let backup_unpark t r key origin =
  if not (tbl_remove t.parkeds.(r) key (Int.equal origin)) then
    neg_add t.neg_parks.(r) key origin

(* ------------------------------------------------------------- routing *)

(* Route a payload from [src_vnode] to the manager of [point].  [send]
   abstracts over the engine. *)
let route_via t b ~send ~src_vnode ~point payload =
  let path = Route_table.path b.brt ~src:src_vnode ~point in
  let pbits = payload_bits t payload in
  let rid = batch_add b path pbits payload in
  if Array.length path <= 1 then
    (* Already at the manager: local handling via a self-send. *)
    send ~src:(Ldb.owner src_vnode) ~dst:(Ldb.owner src_vnode) (rid lsl 16)
  else send ~src:(Ldb.owner path.(0)) ~dst:(Ldb.owner path.(1)) ((rid lsl 16) lor 1)

let reply_point t origin = Ldb.label t.ldb (Ldb.vnode ~owner:origin Ldb.Middle)

(* Primary-side replica maintenance fan-out (no-ops at k = 1). *)
let backups_send t b ~send ~src_vnode ~key mk =
  for r = 1 to t.k - 1 do
    route_via t b ~send ~src_vnode ~point:(replica_point t r key) (mk r)
  done

(* Engine-agnostic message handler.  [send] enqueues a message; [complete]
   records a finished operation. *)
let handle t b ~send ~complete w =
  let rid = w lsr 16 in
  let idx = w land 0xffff in
  let path = b.bpaths.(rid) in
  let last = Array.length path - 1 in
  if idx < last then
    (* Still in transit: forward one hop. *)
    send ~src:(Ldb.owner path.(idx)) ~dst:(Ldb.owner path.(idx + 1)) (w + 1)
  else begin
    if last < 0 then failwith "Dht: empty routing path";
    let final = path.(last) in
    match b.bpay.(rid) with
    | P_put { origin; key; elt; confirm } ->
        (match unpark t key with
        | Some requester ->
            (* A Get was already waiting: rendezvous complete. *)
            backups_send t b ~send ~src_vnode:final ~key (fun r ->
                P_bunpark { key; origin = requester; r });
            route_via t b ~send ~src_vnode:final ~point:(reply_point t requester)
              (P_reply { origin = requester; key; elt })
        | None ->
            store_push t key elt;
            backups_send t b ~send ~src_vnode:final ~key (fun r -> P_bset { key; elt; r }));
        if confirm then
          route_via t b ~send ~src_vnode:final ~point:(reply_point t origin)
            (P_confirm { origin; key })
    | P_get { origin; key } -> (
        match store_pop t key with
        | Some elt ->
            backups_send t b ~send ~src_vnode:final ~key (fun r -> P_brm { key; elt; r });
            route_via t b ~send ~src_vnode:final ~point:(reply_point t origin)
              (P_reply { origin; key; elt })
        | None ->
            park t key origin;
            backups_send t b ~send ~src_vnode:final ~key (fun r -> P_bpark { key; origin; r }))
    | P_reply { origin; key; elt } -> complete (Got { origin; key; elt })
    | P_confirm { origin; key } -> complete (Put_confirmed { origin; key })
    | P_bset { key; elt; r } -> backup_set t r key elt
    | P_brm { key; elt; r } -> backup_rm t r key elt
    | P_bpark { key; origin; r } -> backup_park t r key origin
    | P_bunpark { key; origin; r } -> backup_unpark t r key origin
  end

let launch t b ~send op =
  match op with
  | Put { origin; key; elt; confirm } ->
      route_via t b ~send ~src_vnode:(Ldb.vnode ~owner:origin Ldb.Middle)
        ~point:(key_point t key)
        (P_put { origin; key; elt; confirm })
  | Get { origin; key } ->
      route_via t b ~send ~src_vnode:(Ldb.vnode ~owner:origin Ldb.Middle)
        ~point:(key_point t key)
        (P_get { origin; key })

(* One trace event per launched operation, tagged with the manager node the
   key rendezvouses at. *)
let trace_ops trace t ops =
  match trace with
  | None -> ()
  | Some _ ->
      List.iter
        (fun op ->
          match op with
          | Put { origin; key; _ } ->
              Dpq_obs.Trace.dht_put trace ~origin ~key ~manager:(Ldb.owner (manager_of_key t key))
          | Get { origin; key } ->
              Dpq_obs.Trace.dht_get trace ~origin ~key ~manager:(Ldb.owner (manager_of_key t key)))
        ops

let run_batch_sync ?trace ?faults ?sched t ops =
  let span = Dpq_obs.Trace.phase_start trace "dht" in
  trace_ops trace t ops;
  let completions = ref [] in
  let complete c = completions := c :: !completions in
  let b = batch_create ~ldb:t.ldb () in
  (* One [send] closure for the whole batch (routed through a ref to break
     the engine/handler cycle): the old per-delivery lambda was a
     measurable allocation on every forwarded hop. *)
  let send_ref = ref (fun ~src:_ ~dst:_ _ -> assert false) in
  let send ~src ~dst m = !send_ref ~src ~dst m in
  let handler _eng ~dst:_ ~src:_ w = handle t b ~send ~complete w in
  let eng = Sync.create ~n:(Ldb.n t.ldb) ~size_bits:(size_bits t b) ~handler ?trace ?faults ?sched () in
  send_ref := (fun ~src ~dst m -> Sync.send eng ~src ~dst m);
  List.iter (fun op -> launch t b ~send op) ops;
  let rounds = Sync.run_to_quiescence eng in
  let m = Sync.metrics eng in
  let report =
    Phase.
      {
        rounds;
        messages = Dpq_simrt.Metrics.total_messages m;
        max_congestion = Dpq_simrt.Metrics.max_congestion m;
        max_message_bits = Dpq_simrt.Metrics.max_message_bits m;
        total_bits = Dpq_simrt.Metrics.total_bits m;
        local_deliveries = Dpq_simrt.Metrics.local_deliveries m;
        busiest_node_load = Array.fold_left max 0 (Dpq_simrt.Metrics.node_load m);
      }
  in
  Dpq_obs.Trace.phase_end trace ~span ~name:"dht" ~rounds:report.Phase.rounds
    ~messages:report.Phase.messages ~max_congestion:report.Phase.max_congestion
    ~max_message_bits:report.Phase.max_message_bits ~total_bits:report.Phase.total_bits;
  (List.rev !completions, report)

let run_batch_async ?trace ?faults ?sched t ~seed ?(policy = Dpq_simrt.Async_engine.Uniform (1.0, 10.0)) ops =
  (* The asynchronous model reports no synchronous cost, so the span closes
     with zeros even though delivery events are traced inside it. *)
  let span = Dpq_obs.Trace.phase_start trace "dht-async" in
  trace_ops trace t ops;
  let completions = ref [] in
  let complete c = completions := c :: !completions in
  let b = batch_create ~ldb:t.ldb () in
  let send_ref = ref (fun ~src:_ ~dst:_ _ -> assert false) in
  let send ~src ~dst m = !send_ref ~src ~dst m in
  let handler _eng ~dst:_ ~src:_ w = handle t b ~send ~complete w in
  let eng = Async.create ~n:(Ldb.n t.ldb) ~seed ~policy ?trace ?faults ?sched ~size_bits:(size_bits t b) ~handler () in
  send_ref := (fun ~src ~dst m -> Async.send eng ~src ~dst m);
  List.iter (fun op -> launch t b ~send op) ops;
  ignore (Async.run_to_quiescence eng);
  Dpq_obs.Trace.phase_end trace ~span ~name:"dht-async" ~rounds:0 ~messages:0 ~max_congestion:0
    ~max_message_bits:0 ~total_bits:0;
  List.rev !completions

let set_topology t ldb' =
  (* Count the elements (and parked requests) whose manager moved to a
     different real node: the data that a join/leave hands off. *)
  let moved = ref 0 in
  let owner_of ldb key = Ldb.owner (Ldb.manager_of_point ldb (key_point t key)) in
  Hashtbl.iter
    (fun key q -> if owner_of t.ldb key <> owner_of ldb' key then moved := !moved + Queue.length q)
    t.stores.(0);
  Hashtbl.iter
    (fun key q -> if owner_of t.ldb key <> owner_of ldb' key then moved := !moved + Queue.length q)
    t.parkeds.(0);
  t.ldb <- ldb';
  t.header_bits <- compute_header_bits ldb';
  !moved

let stored_counts t =
  let counts = Array.make (Ldb.n t.ldb) 0 in
  Hashtbl.iter
    (fun key q ->
      let owner = Ldb.owner (manager_of_key t key) in
      counts.(owner) <- counts.(owner) + Queue.length q)
    t.stores.(0);
  counts

let size t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.stores.(0) 0
let pending_gets t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.parkeds.(0) 0

let stored_elements t =
  Hashtbl.fold (fun _ q acc -> List.rev_append (List.of_seq (Queue.to_seq q)) acc) t.stores.(0) []

let elements_at t ~node =
  Hashtbl.fold
    (fun key q acc ->
      if Ldb.owner (manager_of_key t key) = node then
        List.rev_append (List.of_seq (Queue.to_seq q)) acc
      else acc)
    t.stores.(0) []

let take_matching t ~node ~f =
  let taken = ref [] in
  let updates = ref [] in
  Hashtbl.iter
    (fun key q ->
      if Ldb.owner (manager_of_key t key) = node then begin
        let keep = Queue.create () in
        let mine = ref [] in
        Queue.iter (fun e -> if f e then mine := e :: !mine else Queue.push e keep) q;
        if !mine <> [] then begin
          taken := List.rev_append !mine !taken;
          updates := (key, keep, !mine) :: !updates
        end
      end)
    t.stores.(0);
  List.iter
    (fun (key, keep, removed) ->
      if Queue.is_empty keep then Hashtbl.remove t.stores.(0) key
      else Hashtbl.replace t.stores.(0) key keep;
      (* Replica copies drop the same identities; modelled as free local
         bookkeeping, like [take_matching] itself (Seap charges this
         phase's traffic elsewhere). *)
      for r = 1 to t.k - 1 do
        List.iter (fun e -> ignore (tbl_remove t.stores.(r) key (Element.equal e))) removed
      done)
    !updates;
  !taken

(* ===================================================== anti-entropy repair

   Replica copies diverge only one way: a copy can MISS entries (its range
   was stored on a node that died, or a planted test divergence), never
   hold stale extras — removals are only issued by a primary that owns the
   entry, and tombstones absorb message races within a batch.  Union-merge
   is therefore the correct reconciliation, and one directed pull per
   replica pair suffices.

   The protocol is modeled on Scalaris's rr_recon: for every ordered
   replica pair (r_to pulls from r_from) and every pair of live nodes
   (w = the node owning the damaged range at r_to, v = the node owning the
   same keys at r_from), a session reconciles the two key sets with a
   compressed Merkle exchange.  Keys are placed in a binary hash trie over
   the top [max_depth] bits of a per-key integer hash u(x); a node's
   signature is the XOR over its keys of mix(u(x), content-sig(x)), which
   both sides compute from a sorted (u, sig) array with prefix-XOR range
   queries — no materialized tree.  w sends its frontier signatures
   top-down; v prunes equal subtrees, ships the entries of differing
   leaf-sized ranges, and asks w to descend otherwise.  Signatures travel
   truncated to 32 bits (Scalaris's trade-off: a collision only delays
   convergence by one repair pass).  Traffic is O(δ log m) for δ differing
   entries among m: one signature pair per differing node per level. *)

type repair_stats = {
  sessions : int;
  keys_pulled : int;
  elements_shipped : int;
  repair_messages : int;
  repair_bits : int;
}

let zero_repair_stats =
  { sessions = 0; keys_pulled = 0; elements_shipped = 0; repair_messages = 0; repair_bits = 0 }

(* Trie depth: u(x) keeps the top 52 bits of the key hash so shifted
   interval bounds stay well inside OCaml's 63-bit ints. *)
let max_depth = 52
let bucket_max = 4
let sig_bits = 32
let sig_mask = (1 lsl sig_bits) - 1

let key_u t key = Dpq_util.Hashing.int t.hash (key lxor 0x5bd1e995) land ((1 lsl max_depth) - 1)

(* Content signature of one key's replica copy: order-independent in the
   stored multiset (identities are unique), order-dependent in nothing. *)
let content_sig t elts parked =
  let h e =
    Dpq_util.Hashing.int t.hash
      (Dpq_util.Hashing.pair t.hash e.Element.prio (Dpq_util.Hashing.pair t.hash e.Element.origin e.Element.seq))
  in
  let acc = List.fold_left (fun acc e -> acc lxor h e) 0 elts in
  List.fold_left (fun acc o -> acc lxor Dpq_util.Hashing.int t.hash (o lxor 0x27d4eb2f)) acc parked
  land sig_mask

(* One side of a session: keys sorted by u, with per-key signatures, a
   prefix-XOR array for O(log) node signatures, and the full entries for
   shipping. *)
type side = {
  us : int array;
  skeys : int array;
  entries : (Element.t list * int list) array; (* elements, parked origins *)
  xor_pfx : int array; (* xor_pfx.(i) = xor of mix(u, sig) over [0, i) *)
}

let side_of_keys t r keys =
  let items =
    List.map
      (fun key ->
        let elts =
          match Hashtbl.find_opt t.stores.(r) key with
          | Some q -> List.of_seq (Queue.to_seq q)
          | None -> []
        in
        let parked =
          match Hashtbl.find_opt t.parkeds.(r) key with
          | Some q -> List.of_seq (Queue.to_seq q)
          | None -> []
        in
        (key_u t key, key, (elts, parked)))
      keys
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let n = List.length items in
  let us = Array.make n 0 and skeys = Array.make n 0 in
  let entries = Array.make n ([], []) in
  List.iteri
    (fun i (u, key, e) ->
      us.(i) <- u;
      skeys.(i) <- key;
      entries.(i) <- e)
    items;
  let xor_pfx = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let elts, parked = entries.(i) in
    let mix = Dpq_util.Hashing.pair t.hash us.(i) (content_sig t elts parked) in
    xor_pfx.(i + 1) <- xor_pfx.(i) lxor (mix land sig_mask)
  done;
  { us; skeys; entries; xor_pfx }

(* Index range [lo, hi) of u values under trie node (depth, prefix). *)
let side_range side ~depth ~prefix =
  let width = max_depth - depth in
  let lo_u = prefix lsl width in
  let hi_u = (prefix + 1) lsl width in
  let bsearch target =
    let lo = ref 0 and hi = ref (Array.length side.us) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if side.us.(mid) < target then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (bsearch lo_u, bsearch hi_u)

let side_sig side ~lo ~hi = side.xor_pfx.(hi) lxor side.xor_pfx.(lo)

type rnode = { rdepth : int; rprefix : int; rsig : int; rleaf : bool }

type rmsg =
  | R_sigs of { sid : int; nodes : rnode list }
  | R_reply of {
      sid : int;
      descend : (int * int) list; (* (depth, prefix) pairs w should expand *)
      ship : (int * Element.t list * int list) list; (* key, elements, parked *)
    }

type session = {
  sid : int;
  sw : int; (* puller node *)
  sv : int; (* offerer node *)
  s_r_to : int;
  w_side : side;
  v_side : side;
  mutable outstanding : int;
  mutable s_keys_pulled : int;
  mutable s_elements_shipped : int;
  mutable s_done : bool;
      (* completion latch: co-located sessions deliver self-messages inline,
         so an outer R_reply frame can observe outstanding = 0 again after a
         nested frame already completed the session *)
}

let sid_bits = 16

let rmsg_bits = function
  | R_sigs { nodes; _ } ->
      List.fold_left (fun acc n -> acc + 6 + n.rdepth + sig_bits + 1) sid_bits nodes
  | R_reply { descend; ship; _ } ->
      let d = List.fold_left (fun acc (depth, _) -> acc + 6 + depth) 0 descend in
      List.fold_left
        (fun acc (key, elts, parked) ->
          acc + Bitsize.bits_of_int key
          + List.fold_left (fun a e -> a + Element.encoded_bits e) 0 elts
          + List.fold_left (fun a o -> a + Bitsize.bits_of_int o) 0 parked)
        (sid_bits + d) ship

let wnode_of w_side ~depth ~prefix =
  let lo, hi = side_range w_side ~depth ~prefix in
  {
    rdepth = depth;
    rprefix = prefix;
    rsig = side_sig w_side ~lo ~hi;
    rleaf = hi - lo <= bucket_max || depth >= max_depth;
  }

(* Merge entries shipped by the offerer into replica [r_to]'s copy: add
   elements missing by identity and parked requesters missing by count —
   strictly additive, per the one-sided divergence invariant. *)
let merge_shipped t s ship =
  List.iter
    (fun (key, elts, parked) ->
      let changed = ref false in
      let have_elts =
        match Hashtbl.find_opt t.stores.(s.s_r_to) key with
        | Some q -> List.of_seq (Queue.to_seq q)
        | None -> []
      in
      List.iter
        (fun e ->
          if not (List.exists (Element.equal e) have_elts) then begin
            tbl_push t.stores.(s.s_r_to) key e;
            changed := true;
            s.s_elements_shipped <- s.s_elements_shipped + 1
          end)
        elts;
      let have_parked =
        match Hashtbl.find_opt t.parkeds.(s.s_r_to) key with
        | Some q -> List.of_seq (Queue.to_seq q)
        | None -> []
      in
      let count x l = List.length (List.filter (Int.equal x) l) in
      List.sort_uniq Int.compare parked
      |> List.iter (fun o ->
             for _ = 1 to count o parked - count o have_parked do
               tbl_push t.parkeds.(s.s_r_to) key o;
               changed := true
             done);
      if !changed then s.s_keys_pulled <- s.s_keys_pulled + 1)
    ship

(* Run one directed reconciliation round: every replica pulls what it is
   missing from replica (r + stride) mod k.  All sessions share one
   synchronous engine; messages between co-located replicas are free local
   deliveries. *)
let repair_round ?trace t ~stride ~on_session =
  let live =
    List.filter (fun id -> Ldb.is_present t.ldb ~id) (List.init (Ldb.n t.ldb) Fun.id)
  in
  let sessions = Hashtbl.create 32 in
  let next_sid = ref 0 in
  (* Partition each replica's keys by (owner at r_to, owner at r_from). *)
  let keys_of r =
    let ks = Hashtbl.create 64 in
    Hashtbl.iter (fun key _ -> Hashtbl.replace ks key ()) t.stores.(r);
    Hashtbl.iter (fun key _ -> Hashtbl.replace ks key ()) t.parkeds.(r);
    Hashtbl.fold (fun key () acc -> key :: acc) ks [] |> List.sort Int.compare
  in
  let session_lists = Hashtbl.create 64 in
  (* (w, v, r_to) -> (w_keys ref, v_keys ref) *)
  let bucket w v r_to =
    match Hashtbl.find_opt session_lists (w, v, r_to) with
    | Some b -> b
    | None ->
        let b = (ref [], ref []) in
        Hashtbl.replace session_lists (w, v, r_to) b;
        b
  in
  for r_to = 0 to t.k - 1 do
    let r_from = (r_to + stride) mod t.k in
    List.iter
      (fun key ->
        let w = replica_owner t r_to key and v = replica_owner t r_from key in
        let wl, _ = bucket w v r_to in
        wl := key :: !wl)
      (keys_of r_to);
    List.iter
      (fun key ->
        let w = replica_owner t r_to key and v = replica_owner t r_from key in
        let _, vl = bucket w v r_to in
        vl := key :: !vl)
      (keys_of r_from)
  done;
  let send_ref = ref (fun ~src:_ ~dst:_ (_ : rmsg) -> assert false) in
  let send ~src ~dst m = !send_ref ~src ~dst m in
  let handler _eng ~dst:_ ~src:_ msg =
    match msg with
    | R_sigs { sid; nodes } ->
        (* Offerer side: prune equal subtrees, ship leaf-sized diffs, ask
           for a descent otherwise. *)
        let s = Hashtbl.find sessions sid in
        let descend = ref [] and ship = ref [] in
        List.iter
          (fun wn ->
            let lo, hi = side_range s.v_side ~depth:wn.rdepth ~prefix:wn.rprefix in
            let vsig = side_sig s.v_side ~lo ~hi in
            if vsig <> wn.rsig then
              if wn.rleaf || hi - lo <= bucket_max || wn.rdepth >= max_depth then begin
                for i = lo to hi - 1 do
                  let elts, parked = s.v_side.entries.(i) in
                  ship := (s.v_side.skeys.(i), elts, parked) :: !ship
                done
              end
              else descend := (wn.rdepth, wn.rprefix) :: !descend)
          nodes;
        send ~src:s.sv ~dst:s.sw (R_reply { sid; descend = List.rev !descend; ship = List.rev !ship })
    | R_reply { sid; descend; ship } ->
        let s = Hashtbl.find sessions sid in
        s.outstanding <- s.outstanding - 1;
        merge_shipped t s ship;
        let children =
          List.concat_map
            (fun (depth, prefix) ->
              [
                wnode_of s.w_side ~depth:(depth + 1) ~prefix:(2 * prefix);
                wnode_of s.w_side ~depth:(depth + 1) ~prefix:((2 * prefix) + 1);
              ])
            descend
        in
        if children <> [] then begin
          s.outstanding <- s.outstanding + 1;
          send ~src:s.sw ~dst:s.sv (R_sigs { sid; nodes = children })
        end;
        if s.outstanding = 0 && not s.s_done then begin
          s.s_done <- true;
          on_session s
        end
  in
  let eng =
    Sync.create ~n:(Ldb.n t.ldb) ~size_bits:rmsg_bits ~handler ?trace ()
  in
  send_ref := (fun ~src ~dst m -> Sync.send eng ~src ~dst m);
  (* Kick off every non-trivial session with the puller's root signature. *)
  Hashtbl.fold (fun key b acc -> (key, b) :: acc) session_lists []
  |> List.sort compare
  |> List.iter (fun ((w, v, r_to), (wl, vl)) ->
         if (!wl <> [] || !vl <> []) && List.mem w live && List.mem v live then begin
           let sid = !next_sid in
           incr next_sid;
           let s =
             {
               sid;
               sw = w;
               sv = v;
               s_r_to = r_to;
               w_side = side_of_keys t r_to !wl;
               v_side = side_of_keys t ((r_to + stride) mod t.k) !vl;
               outstanding = 1;
               s_keys_pulled = 0;
               s_elements_shipped = 0;
               s_done = false;
             }
           in
           Hashtbl.replace sessions sid s;
           send ~src:w ~dst:v (R_sigs { sid; nodes = [ wnode_of s.w_side ~depth:0 ~prefix:0 ] })
         end);
  let rounds = Sync.run_to_quiescence eng in
  let m = Sync.metrics eng in
  (!next_sid, rounds, Dpq_simrt.Metrics.total_messages m, Dpq_simrt.Metrics.total_bits m)

let repair ?trace t =
  if t.k = 1 then zero_repair_stats
  else begin
    let span = Dpq_obs.Trace.phase_start trace "repair" in
    let keys_pulled = ref 0 and elements_shipped = ref 0 in
    let sessions = ref 0 and messages = ref 0 and bits = ref 0 and rounds = ref 0 in
    let on_session s =
      if s.s_keys_pulled > 0 then begin
        keys_pulled := !keys_pulled + s.s_keys_pulled;
        elements_shipped := !elements_shipped + s.s_elements_shipped;
        Dpq_obs.Trace.repair_session trace ~src:s.sv ~dst:s.sw ~keys_pulled:s.s_keys_pulled
          ~elements_shipped:s.s_elements_shipped
      end
    in
    (* k - 1 directed strides propagate the union to every replica even
       when several copies of the same key were damaged. *)
    for stride = 1 to t.k - 1 do
      let ns, r, m, b = repair_round ?trace t ~stride ~on_session in
      sessions := !sessions + ns;
      rounds := !rounds + r;
      messages := !messages + m;
      bits := !bits + b
    done;
    Dpq_obs.Trace.repair_end trace ~sessions:!sessions ~keys_pulled:!keys_pulled
      ~elements_shipped:!elements_shipped;
    Dpq_obs.Trace.phase_end trace ~span ~name:"repair" ~rounds:!rounds ~messages:!messages
      ~max_congestion:0 ~max_message_bits:0 ~total_bits:!bits;
    {
      sessions = !sessions;
      keys_pulled = !keys_pulled;
      elements_shipped = !elements_shipped;
      repair_messages = !messages;
      repair_bits = !bits;
    }
  end

(* ------------------------------------------------------- permanent loss *)

type kill_report = { destroyed : int; repair : repair_stats }

let drop_replica_entries t ~r ~f =
  if r < 0 || r >= t.k then invalid_arg "Dht.drop_replica_entries: replica out of range";
  let dropped = ref 0 in
  let doomed tbl =
    Hashtbl.fold (fun key q acc -> if f ~key then (key, Queue.length q) :: acc else acc) tbl []
  in
  List.iter
    (fun (key, len) ->
      Hashtbl.remove t.stores.(r) key;
      dropped := !dropped + len)
    (doomed t.stores.(r));
  List.iter
    (fun (key, len) ->
      Hashtbl.remove t.parkeds.(r) key;
      dropped := !dropped + len)
    (doomed t.parkeds.(r));
  !dropped

let kill_node ?trace t ~node =
  if not (Ldb.is_present t.ldb ~id:node) then invalid_arg "Dht.kill_node: node already gone";
  (* 1. Destroy every replica copy the dead node stored (computed on the
     old overlay, where it still owns its ranges). *)
  let destroyed = ref 0 in
  for r = 0 to t.k - 1 do
    destroyed :=
      !destroyed + drop_replica_entries t ~r ~f:(fun ~key -> replica_owner t r key = node)
  done;
  (* 2. Re-home its key-range: survivors' cycle positions absorb it. *)
  t.ldb <- Ldb.remove t.ldb ~id:node;
  t.header_bits <- compute_header_bits t.ldb;
  Dpq_obs.Trace.repair_start trace ~node ~reason:"kill" ~entries_lost:!destroyed;
  (* 3. Anti-entropy repair rebuilds the lost copies from the survivors. *)
  let stats = repair ?trace t in
  { destroyed = !destroyed; repair = stats }
