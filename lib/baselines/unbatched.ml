module Element = Dpq_util.Element
module Interval = Dpq_util.Interval
module Ldb = Dpq_overlay.Ldb
module Aggtree = Dpq_aggtree.Aggtree
module Phase = Dpq_aggtree.Phase
module Sync = Dpq_simrt.Sync_engine
module Metrics = Dpq_simrt.Metrics
module Dht = Dpq_dht.Dht
module Anchor = Dpq_skeap.Anchor
module Batch = Dpq_skeap.Batch
module Oplog = Dpq_semantics.Oplog

type pending = { local_seq : int; kind : [ `Ins of Element.t | `Del ] }

type t = {
  n : int;
  num_prios : int;
  ldb : Ldb.t;
  trace : Dpq_obs.Trace.t option;
  faults : Dpq_simrt.Fault_plan.t option;
  sched : Dpq_simrt.Sched.t option;
  tree : Aggtree.t;
  dht : Dht.t;
  key_hash : Dpq_util.Hashing.t;
  buffers : pending Queue.t array;
  seq_counters : int array;
  elt_counters : int array;
  anchor : Anchor.t;
  mutable witness : int;
  mutable log : Oplog.record list;
}

let create ?(seed = 1) ?trace ?faults ?sched ~n ~num_prios () =
  if n < 1 then invalid_arg "Unbatched.create: need n >= 1";
  let ldb = Ldb.build ~n ~seed in
  {
    n;
    num_prios;
    ldb;
    trace;
    faults;
    sched;
    tree = Aggtree.of_ldb ldb;
    dht = Dht.create ~ldb ~seed:(seed + 7919) ();
    key_hash = Dpq_util.Hashing.create ~seed:(seed + 104729);
    buffers = Array.init n (fun _ -> Queue.create ());
    seq_counters = Array.make n 0;
    elt_counters = Array.make n 0;
    anchor = Anchor.create ~num_prios;
    witness = 0;
    log = [];
  }

let n t = t.n
let heap_size t = Anchor.total_occupied t.anchor
let trace t = t.trace
let stored_per_node t = Dht.stored_counts t.dht

let check_node t node =
  if node < 0 || node >= t.n then invalid_arg "Unbatched: node out of range"

let insert t ~node ~prio =
  check_node t node;
  if prio < 1 || prio > t.num_prios then invalid_arg "Unbatched.insert: bad priority";
  let seq = t.elt_counters.(node) in
  t.elt_counters.(node) <- seq + 1;
  let elt = Element.make ~prio ~origin:node ~seq () in
  let local_seq = t.seq_counters.(node) in
  t.seq_counters.(node) <- local_seq + 1;
  Queue.push { local_seq; kind = `Ins elt } t.buffers.(node);
  elt

let delete_min t ~node =
  check_node t node;
  let local_seq = t.seq_counters.(node) in
  t.seq_counters.(node) <- local_seq + 1;
  Queue.push { local_seq; kind = `Del } t.buffers.(node)

let pending_ops t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.buffers

type completion = Dpq_types.Types.completion = {
  node : int;
  local_seq : int;
  outcome : [ `Inserted of Element.t | `Got of Element.t | `Empty ];
}

type result = {
  completions : completion list;
  report : Phase.report;
  anchor_load : int;
}

(* Tree-climbing request / routed assignment reply. *)
type payload =
  | Climb of { origin : int; local_seq : int; kind : [ `Ins of Element.t | `Del ]; at : Ldb.vnode }
  | Assign of {
      origin : int;
      local_seq : int;
      kind : [ `Ins of Element.t | `Del ];
      slot : (int * int) option; (* (priority, position); None = ⊥ *)
    }

type msg = { path : Ldb.vnode list; payload : payload }

let payload_bits = function
  | Climb { kind = `Ins e; _ } -> 64 + Element.encoded_bits e
  | Climb _ -> 64
  | Assign { kind = `Ins e; _ } -> 80 + Element.encoded_bits e
  | Assign _ -> 80

let dht_key t prio pos = Dpq_util.Hashing.pair t.key_hash prio pos

let process t =
  let span = Dpq_obs.Trace.phase_start t.trace "unbatched" in
  let root = Aggtree.root t.tree in
  let dht_ops = ref [] in
  let get_index = Hashtbl.create 64 in
  let completions = ref [] in
  let send_along eng path payload =
    match path with
    | [] -> assert false
    | [ only ] ->
        Sync.send eng ~src:(Ldb.owner only) ~dst:(Ldb.owner only) { path = [ only ]; payload }
    | first :: (next :: _ as rest) ->
        Sync.send eng ~src:(Ldb.owner first) ~dst:(Ldb.owner next) { path = rest; payload }
  in
  let at_anchor eng origin local_seq kind =
    (* One-operation batch through the real anchor logic. *)
    let ops = match kind with `Ins e -> [ Batch.Ins (Element.prio e) ] | `Del -> [ Batch.Del ] in
    let assignment = Anchor.assign t.anchor (Batch.of_ops ~num_prios:t.num_prios ops) in
    let ea = List.hd assignment in
    let slot, result, okind =
      match kind with
      | `Ins e ->
          let prio = Element.prio e in
          let iv = ea.Anchor.ins.(prio - 1) in
          (Some (prio, Interval.lo iv), None, Oplog.Insert e)
      | `Del -> (
          match ea.Anchor.dels with
          | (prio, iv) :: _ -> (Some (prio, Interval.lo iv), None, Oplog.Delete_min)
          | [] -> (None, None, Oplog.Delete_min))
    in
    let w = t.witness in
    t.witness <- w + 1;
    (* matched delete results are filled in after the DHT round; record the
       insert/⊥ cases now *)
    (match (kind, slot) with
    | `Ins e, _ ->
        t.log <- Oplog.{ node = origin; local_seq; witness = w; kind = okind; result } :: t.log;
        ignore e
    | `Del, None ->
        t.log <- Oplog.{ node = origin; local_seq; witness = w; kind = okind; result = None } :: t.log
    | `Del, Some _ -> ());
    let reply = Assign { origin; local_seq; kind; slot } in
    send_along eng
      (fst
         (Ldb.route t.ldb ~src:root
            ~point:(Ldb.label t.ldb (Ldb.vnode ~owner:origin Ldb.Middle))))
      reply;
    w
  in
  let del_witness = Hashtbl.create 64 in
  let handle eng final payload =
    match payload with
    | Climb { origin; local_seq; kind; at } -> (
        match Aggtree.parent t.tree at with
        | None ->
            let w = at_anchor eng origin local_seq kind in
            if kind = `Del then Hashtbl.replace del_witness (origin, local_seq) w
        | Some p ->
            ignore final;
            Sync.send eng ~src:(Ldb.owner at) ~dst:(Ldb.owner p)
              { path = [ p ]; payload = Climb { origin; local_seq; kind; at = p } })
    | Assign { origin; local_seq; kind; slot } -> (
        match (kind, slot) with
        | `Ins elt, Some (prio, pos) ->
            dht_ops :=
              Dht.Put { origin; key = dht_key t prio pos; elt; confirm = false } :: !dht_ops;
            completions := { node = origin; local_seq; outcome = `Inserted elt } :: !completions
        | `Ins _, None -> assert false
        | `Del, Some (prio, pos) ->
            let key = dht_key t prio pos in
            Hashtbl.replace get_index (origin, key) local_seq;
            dht_ops := Dht.Get { origin; key } :: !dht_ops
        | `Del, None ->
            completions := { node = origin; local_seq; outcome = `Empty } :: !completions)
  in
  let handler eng ~dst:_ ~src:_ msg =
    match msg.path with
    | [] -> assert false
    | [ final ] -> handle eng final msg.payload
    | cur :: (next :: _ as rest) ->
        Sync.send eng ~src:(Ldb.owner cur) ~dst:(Ldb.owner next)
          { path = rest; payload = msg.payload }
  in
  let eng =
    Sync.create ~n:t.n
      ~size_bits:(fun m -> 64 + payload_bits m.payload)
      ~handler ?trace:t.trace ?faults:t.faults ?sched:t.sched ()
  in
  for node = 0 to t.n - 1 do
    Queue.iter
      (fun (p : pending) ->
        let at = Ldb.vnode ~owner:node Ldb.Middle in
        Sync.send eng ~src:node ~dst:node
          { path = [ at ]; payload = Climb { origin = node; local_seq = p.local_seq; kind = p.kind; at } })
      t.buffers.(node);
    Queue.clear t.buffers.(node)
  done;
  let rounds = Sync.run_to_quiescence eng in
  let m = Sync.metrics eng in
  let anchor_load = (Metrics.node_load m).(Ldb.owner root) in
  (* Close the climb span before the DHT batch opens its own ["dht"] span;
     the DHT report is added separately below. *)
  Dpq_obs.Trace.phase_end t.trace ~span ~name:"unbatched" ~rounds
    ~messages:(Metrics.total_messages m) ~max_congestion:(Metrics.max_congestion m)
    ~max_message_bits:(Metrics.max_message_bits m) ~total_bits:(Metrics.total_bits m);
  (* Phase 4: the DHT rendezvous. *)
  let dht_cs, dht_report = Dht.run_batch_sync ?trace:t.trace ?faults:t.faults ?sched:t.sched t.dht (List.rev !dht_ops) in
  List.iter
    (fun c ->
      match c with
      | Dht.Got { origin; key; elt } -> (
          match Hashtbl.find_opt get_index (origin, key) with
          | None -> failwith "Unbatched: unexpected DHT result"
          | Some local_seq ->
              Hashtbl.remove get_index (origin, key);
              completions := { node = origin; local_seq; outcome = `Got elt } :: !completions;
              let w = Hashtbl.find del_witness (origin, local_seq) in
              t.log <-
                Oplog.
                  { node = origin; local_seq; witness = w; kind = Oplog.Delete_min; result = Some elt }
                :: t.log)
      | Dht.Put_confirmed _ -> ())
    dht_cs;
  if Hashtbl.length get_index > 0 then failwith "Unbatched: unmatched DeleteMin";
  let report =
    Phase.add_report dht_report
      Phase.
        {
          rounds;
          messages = Metrics.total_messages m;
          max_congestion = Metrics.max_congestion m;
          max_message_bits = Metrics.max_message_bits m;
          total_bits = Metrics.total_bits m;
          local_deliveries = Metrics.local_deliveries m;
          busiest_node_load = Array.fold_left max 0 (Metrics.node_load m);
        }
  in
  let completions =
    List.sort
      (fun a b ->
        let c = Int.compare a.node b.node in
        if c <> 0 then c else Int.compare a.local_seq b.local_seq)
      !completions
  in
  { completions; report; anchor_load }

let oplog t = Oplog.of_list t.log

let take_log t =
  let l = t.log in
  t.log <- [];
  (* witnesses are assigned when an operation serializes, which can precede
     the moment its record is logged (e.g. matched deletes complete after
     the DHT round), so the retained list is not witness-sorted *)
  List.sort (fun (a : Oplog.record) b -> Int.compare a.Oplog.witness b.Oplog.witness) l
