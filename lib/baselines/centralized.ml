module Element = Dpq_util.Element
module Ldb = Dpq_overlay.Ldb
module Sync = Dpq_simrt.Sync_engine
module Metrics = Dpq_simrt.Metrics
module Phase = Dpq_aggtree.Phase
module Oplog = Dpq_semantics.Oplog

type pending = { local_seq : int; kind : [ `Ins of Element.t | `Del ] }

type t = {
  n : int;
  ldb : Ldb.t;
  trace : Dpq_obs.Trace.t option;
  faults : Dpq_simrt.Fault_plan.t option;
  sched : Dpq_simrt.Sched.t option;
  buffers : pending Queue.t array;
  seq_counters : int array;
  elt_counters : int array;
  mutable heap : Element.t Pairing_heap.t;
  mutable witness : int;
  mutable log : Oplog.record list;
}

let create ?(seed = 1) ?trace ?faults ?sched ~n () =
  if n < 1 then invalid_arg "Centralized.create: need n >= 1";
  {
    n;
    ldb = Ldb.build ~n ~seed;
    trace;
    faults;
    sched;
    buffers = Array.init n (fun _ -> Queue.create ());
    seq_counters = Array.make n 0;
    elt_counters = Array.make n 0;
    heap = Pairing_heap.empty ~cmp:Element.compare;
    witness = 0;
    log = [];
  }

let n t = t.n
let heap_size t = Pairing_heap.size t.heap
let trace t = t.trace

let stored_per_node t =
  (* The whole heap lives at the coordinator. *)
  let a = Array.make t.n 0 in
  a.(0) <- Pairing_heap.size t.heap;
  a

let check_node t node =
  if node < 0 || node >= t.n then invalid_arg "Centralized: node out of range"

let insert t ~node ~prio =
  check_node t node;
  let seq = t.elt_counters.(node) in
  t.elt_counters.(node) <- seq + 1;
  let elt = Element.make ~prio ~origin:node ~seq () in
  let local_seq = t.seq_counters.(node) in
  t.seq_counters.(node) <- local_seq + 1;
  Queue.push { local_seq; kind = `Ins elt } t.buffers.(node);
  elt

let delete_min t ~node =
  check_node t node;
  let local_seq = t.seq_counters.(node) in
  t.seq_counters.(node) <- local_seq + 1;
  Queue.push { local_seq; kind = `Del } t.buffers.(node)

let pending_ops t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.buffers

type completion = Dpq_types.Types.completion = {
  node : int;
  local_seq : int;
  outcome : [ `Inserted of Element.t | `Got of Element.t | `Empty ];
}

type result = {
  completions : completion list;
  report : Phase.report;
  coordinator_load : int;
}

type payload =
  | Request of { origin : int; local_seq : int; kind : [ `Ins of Element.t | `Del ] }
  | Reply of { origin : int; local_seq : int; outcome : [ `Inserted of Element.t | `Got of Element.t | `Empty ] }

type msg = { path : Ldb.vnode list; payload : payload }

let payload_bits = function
  | Request { kind = `Ins e; _ } -> 64 + Element.encoded_bits e
  | Request _ -> 64
  | Reply { outcome = `Got e; _ } | Reply { outcome = `Inserted e; _ } ->
      64 + Element.encoded_bits e
  | Reply _ -> 64

let process t =
  let span = Dpq_obs.Trace.phase_start t.trace "centralized" in
  let coordinator = 0 in
  let coord_point = Ldb.label t.ldb (Ldb.vnode ~owner:coordinator Ldb.Middle) in
  let completions = ref [] in
  let send_along eng path payload =
    match path with
    | [] -> assert false
    | [ only ] ->
        Sync.send eng ~src:(Ldb.owner only) ~dst:(Ldb.owner only) { path = [ only ]; payload }
    | first :: (next :: _ as rest) ->
        Sync.send eng ~src:(Ldb.owner first) ~dst:(Ldb.owner next) { path = rest; payload }
  in
  let route eng ~from ~point payload =
    send_along eng
      (fst (Ldb.route t.ldb ~src:(Ldb.vnode ~owner:from Ldb.Middle) ~point))
      payload
  in
  let handle eng final payload =
    match payload with
    | Request { origin; local_seq; kind } ->
        assert (Ldb.owner final = coordinator || true);
        (* The coordinator executes the operation immediately on its local
           sequential heap: the whole data structure lives here. *)
        let outcome, result, okind =
          match kind with
          | `Ins elt ->
              t.heap <- Pairing_heap.insert t.heap elt;
              (`Inserted elt, None, Oplog.Insert elt)
          | `Del -> (
              match Pairing_heap.delete_min t.heap with
              | Some (e, rest) ->
                  t.heap <- rest;
                  (`Got e, Some e, Oplog.Delete_min)
              | None -> (`Empty, None, Oplog.Delete_min))
        in
        let w = t.witness in
        t.witness <- w + 1;
        t.log <- Oplog.{ node = origin; local_seq; witness = w; kind = okind; result } :: t.log;
        route eng ~from:(Ldb.owner final)
          ~point:(Ldb.label t.ldb (Ldb.vnode ~owner:origin Ldb.Middle))
          (Reply { origin; local_seq; outcome })
    | Reply { origin; local_seq; outcome } ->
        completions := { node = origin; local_seq; outcome } :: !completions
  in
  let handler eng ~dst:_ ~src:_ msg =
    match msg.path with
    | [] -> assert false
    | [ final ] -> handle eng final msg.payload
    | cur :: (next :: _ as rest) ->
        Sync.send eng ~src:(Ldb.owner cur) ~dst:(Ldb.owner next)
          { path = rest; payload = msg.payload }
  in
  let eng =
    Sync.create ~n:t.n
      ~size_bits:(fun m -> 64 + payload_bits m.payload)
      ~handler ?trace:t.trace ?faults:t.faults ?sched:t.sched ()
  in
  for node = 0 to t.n - 1 do
    Queue.iter
      (fun (p : pending) ->
        route eng ~from:node ~point:coord_point
          (Request { origin = node; local_seq = p.local_seq; kind = p.kind }))
      t.buffers.(node);
    Queue.clear t.buffers.(node)
  done;
  let rounds = Sync.run_to_quiescence eng in
  let m = Sync.metrics eng in
  let load = (Metrics.node_load m).(coordinator) in
  let report =
    Phase.
      {
        rounds;
        messages = Metrics.total_messages m;
        max_congestion = Metrics.max_congestion m;
        max_message_bits = Metrics.max_message_bits m;
        total_bits = Metrics.total_bits m;
        local_deliveries = Metrics.local_deliveries m;
        busiest_node_load = Array.fold_left max 0 (Metrics.node_load m);
      }
  in
  let completions =
    List.sort
      (fun a b ->
        let c = Int.compare a.node b.node in
        if c <> 0 then c else Int.compare a.local_seq b.local_seq)
      !completions
  in
  Dpq_obs.Trace.phase_end t.trace ~span ~name:"centralized" ~rounds:report.Phase.rounds
    ~messages:report.Phase.messages ~max_congestion:report.Phase.max_congestion
    ~max_message_bits:report.Phase.max_message_bits ~total_bits:report.Phase.total_bits;
  { completions; report; coordinator_load = load }

let oplog t = Oplog.of_list t.log

let take_log t =
  let l = t.log in
  t.log <- [];
  (* witnesses are assigned when an operation serializes, which can precede
     the moment its record is logged (e.g. matched deletes complete after
     the DHT round), so the retained list is not witness-sorted *)
  List.sort (fun (a : Oplog.record) b -> Int.compare a.Oplog.witness b.Oplog.witness) l
