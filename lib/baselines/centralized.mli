(** Centralized-coordinator distributed heap — the natural baseline the
    paper's batching is measured against.

    Every node routes each of its buffered operations through the overlay to
    a fixed coordinator (node 0), which executes them one by one on a local
    sequential heap and routes the answers back.  Semantically this is
    perfectly fine (it is sequentially consistent under synchronous
    delivery); the problem is scalability: the coordinator receives {e all}
    traffic, so its congestion grows linearly with the global injection rate
    n·Λ, where Skeap/Seap stay polylogarithmic per node (experiment T6). *)

module Element = Dpq_util.Element

type t

val create :
  ?seed:int ->
  ?trace:Dpq_obs.Trace.t ->
  ?faults:Dpq_simrt.Fault_plan.t ->
  ?sched:Dpq_simrt.Sched.t ->
  n:int ->
  unit ->
  t
(** With [trace], each {!process} opens a ["centralized"] span, traces every
    delivery, and closes the span with the returned report. *)

val n : t -> int
val insert : t -> node:int -> prio:int -> Element.t
val delete_min : t -> node:int -> unit
val pending_ops : t -> int
val heap_size : t -> int

val trace : t -> Dpq_obs.Trace.t option

val stored_per_node : t -> int array
(** Element count per node: everything sits at the coordinator (node 0) —
    the degenerate storage balance the DHT-based designs avoid. *)

type completion = Dpq_types.Types.completion = {
  node : int;
  local_seq : int;
  outcome : [ `Inserted of Element.t | `Got of Element.t | `Empty ];
}

type result = {
  completions : completion list;  (** sorted by (node, local_seq) *)
  report : Dpq_aggtree.Phase.report;
  coordinator_load : int;  (** messages the coordinator handled *)
}

val process : t -> result
(** Execute everything buffered: requests in, sequential processing,
    replies out — all at message level on the synchronous engine. *)

val oplog : t -> Dpq_semantics.Oplog.t
(** The baseline is honest: its log passes the same checkers. *)

val take_log : t -> Dpq_semantics.Oplog.record list
(** Drain the retained log: records completed since the previous take, in
    witness order (see {!Dpq_skeap.Skeap.take_log}). *)
