(** Unbatched Skeap — the ablation of the paper's key mechanism.

    Identical architecture to Skeap (aggregation tree, anchor assigns
    [(priority, position)] pairs, DHT rendezvous), except that operations
    climb the tree {e individually} instead of being combined into batches.
    The anchor still serializes correctly, but every single operation is a
    separate message through the root's neighborhood: the root congestion
    grows linearly with the number of operations in flight, which is exactly
    what batch combining avoids (experiment T6). *)

module Element = Dpq_util.Element

type t

val create :
  ?seed:int ->
  ?trace:Dpq_obs.Trace.t ->
  ?faults:Dpq_simrt.Fault_plan.t ->
  ?sched:Dpq_simrt.Sched.t ->
  n:int ->
  num_prios:int ->
  unit ->
  t
(** With [trace], each {!process} opens an ["unbatched"] span for the
    climb/assign traffic (closed before the DHT batch's own ["dht"] span)
    and traces every delivery. *)

val n : t -> int
val insert : t -> node:int -> prio:int -> Element.t
val delete_min : t -> node:int -> unit
val pending_ops : t -> int
val heap_size : t -> int

val trace : t -> Dpq_obs.Trace.t option

val stored_per_node : t -> int array
(** Elements stored per node in the DHT (Lemma 2.2(iv) balance). *)

type completion = Dpq_types.Types.completion = {
  node : int;
  local_seq : int;
  outcome : [ `Inserted of Element.t | `Got of Element.t | `Empty ];
}

type result = {
  completions : completion list;
  report : Dpq_aggtree.Phase.report;
  anchor_load : int;  (** messages the anchor's owner handled *)
}

val process : t -> result
val oplog : t -> Dpq_semantics.Oplog.t

val take_log : t -> Dpq_semantics.Oplog.record list
(** Drain the retained log: records completed since the previous take, in
    witness order (see {!Dpq_skeap.Skeap.take_log}). *)
